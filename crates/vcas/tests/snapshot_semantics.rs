//! VcasBST snapshot semantics under concurrency: timestamped reads must
//! be stable, mutually ordered, and agree with quiescent states.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use vcas::VcasSet;

#[test]
fn nested_snapshots_are_ordered() {
    let s = VcasSet::new();
    for k in 0..100 {
        s.insert(k);
    }
    let snap_a = s.snapshot();
    for k in 100..200 {
        s.insert(k);
    }
    let snap_b = s.snapshot();
    for k in 0..50 {
        s.remove(k);
    }
    let snap_c = s.snapshot();
    assert_eq!(snap_a.range_count(0, 999), 100);
    assert_eq!(snap_b.range_count(0, 999), 200);
    assert_eq!(snap_c.range_count(0, 999), 150);
    // Old snapshots still intact after later ones were taken.
    assert_eq!(snap_a.range_count(0, 999), 100);
    assert!(snap_a.contains(0));
    assert!(!snap_c.contains(0));
}

#[test]
fn monotone_counts_under_insert_only_writers() {
    let s = Arc::new(VcasSet::new());
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..3u64)
        .map(|t| {
            let s = s.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut k = t;
                while !stop.load(Ordering::Relaxed) {
                    s.insert(k);
                    k += 3;
                }
            })
        })
        .collect();
    let mut last = 0;
    for _ in 0..60 {
        let n = s.snapshot().range_count(0, u64::MAX - 2);
        assert!(n >= last, "count regressed: {n} < {last}");
        last = n;
    }
    stop.store(true, Ordering::SeqCst);
    for w in writers {
        w.join().unwrap();
    }
    ebr::flush();
}

#[test]
fn long_lived_snapshot_survives_heavy_churn() {
    let s = VcasSet::new();
    for k in 0..1_000 {
        s.insert(k);
    }
    let snap = s.snapshot();
    for round in 0..10u64 {
        for k in 0..1_000 {
            s.remove(k);
            s.insert(k + (round + 1) * 100_000);
            s.remove(k + (round + 1) * 100_000);
            s.insert(k);
        }
    }
    assert_eq!(snap.range_count(0, 10_000), 1_000);
    assert_eq!(snap.range_collect(0, 10).len(), 11);
    ebr::flush();
}

#[test]
fn range_collect_sorted_and_bounded() {
    let s = VcasSet::new();
    for k in (0..500).rev() {
        s.insert(k * 2);
    }
    let snap = s.snapshot();
    let got = snap.range_collect(100, 200);
    let want: Vec<u64> = (50..=100).map(|k| k * 2).collect();
    assert_eq!(got, want);
}
