//! # vcas — an unaugmented snapshot BST in the style of VcasBST
//!
//! Stand-in for the VcasBST of Wei et al. (PPoPP 2021) \[33\], the paper's
//! strongest *unaugmented binary* competitor. The defining cost model it
//! contributes to the evaluation:
//!
//! * **updates** pay no augmentation/propagation overhead (cheaper than
//!   BAT's inserts/deletes);
//! * **snapshots** are constant-time (a timestamp read);
//! * **queries** on a snapshot pay Θ(keys inspected): range queries cost
//!   Θ(log n + range), rank queries Θ(#keys ≤ k) — this is why the
//!   augmented trees win Figs. 6–10 past the crossover.
//!
//! Mechanism (following \[33\]'s versioned-CAS idea): every mutable child
//! edge holds a pointer to a [`VNode`] — a timestamped version record with
//! a `prev` pointer to the edge's older versions. Updates install a new
//! `VNode` (via the same LLX/SCX coordination our other trees use) whose
//! timestamp is stamped lazily from the global clock; snapshot readers
//! bump the clock and then traverse the version lists to the newest
//! version no newer than their timestamp.
//!
//! Substitution notes (DESIGN.md §2.5): we keep whole version lists until
//! their owning node is reclaimed rather than implementing \[33\]'s
//! version-list garbage collection; that costs memory proportional to
//! update count but does not change the query/update cost shape this
//! baseline exists to exhibit.

use std::sync::atomic::{AtomicU64, Ordering};

use llxscx::{Llx, RecordHeader};

/// One version of a child edge: `(child, ts, prev)`.
pub struct VNode {
    child: u64, // *const Node
    /// 0 = not yet stamped; stamped lazily by the first reader/writer.
    ts: AtomicU64,
    prev: u64, // *const VNode (older version)
}

impl VNode {
    fn alloc(child: u64, prev: u64) -> u64 {
        Box::into_raw(Box::new(VNode {
            child,
            ts: AtomicU64::new(0),
            prev,
        })) as u64
    }

    #[inline]
    unsafe fn from_raw<'g>(raw: u64) -> &'g VNode {
        unsafe { &*(raw as *const VNode) }
    }
}

/// A tree node. Leaf-oriented: real keys at the leaves; `u64::MAX` and
/// `u64::MAX - 1` serve as the two sentinel infinities (keys must be
/// `< u64::MAX - 1`).
pub struct Node {
    header: RecordHeader,
    key: u64,
    left: AtomicU64,  // *const VNode, 0 for leaves
    right: AtomicU64, // *const VNode
}

const INF1: u64 = u64::MAX - 1;
const INF2: u64 = u64::MAX;

impl Node {
    fn leaf(key: u64) -> u64 {
        Box::into_raw(Box::new(Node {
            header: RecordHeader::new(),
            key,
            left: AtomicU64::new(0),
            right: AtomicU64::new(0),
        })) as u64
    }

    fn internal(key: u64, left_child: u64, right_child: u64) -> u64 {
        Box::into_raw(Box::new(Node {
            header: RecordHeader::new(),
            key,
            left: AtomicU64::new(VNode::alloc(left_child, 0)),
            right: AtomicU64::new(VNode::alloc(right_child, 0)),
        })) as u64
    }

    #[inline]
    unsafe fn from_raw<'g>(raw: u64) -> &'g Node {
        unsafe { &*(raw as *const Node) }
    }

    #[inline]
    fn is_leaf(&self) -> bool {
        self.left.load(Ordering::Acquire) == 0
    }
}

/// The VcasBST-style set.
pub struct VcasSet {
    entry: u64,
    clock: AtomicU64,
}

unsafe impl Send for VcasSet {}
unsafe impl Sync for VcasSet {}

/// A constant-time snapshot: a timestamp plus an epoch guard pinning the
/// version lists.
pub struct VcasSnapshot<'t> {
    set: &'t VcasSet,
    ts: u64,
    _guard: ebr::Guard,
}

impl VcasSet {
    /// Empty set with the standard two-level sentinel structure.
    pub fn new() -> Self {
        let real_slot = Node::leaf(INF1);
        let inf1_right = Node::leaf(INF1);
        let inf1 = Node::internal(INF1, real_slot, inf1_right);
        let inf2_leaf = Node::leaf(INF2);
        let entry = Node::internal(INF2, inf1, inf2_leaf);
        VcasSet {
            entry,
            clock: AtomicU64::new(1),
        }
    }

    /// Stamp an unstamped version with the current clock (lazy timestamping
    /// as in \[33\]: the CAS makes stamping race-free).
    #[inline]
    fn init_ts(&self, v: &VNode) -> u64 {
        let t = v.ts.load(Ordering::Acquire);
        if t != 0 {
            return t;
        }
        let now = self.clock.load(Ordering::SeqCst);
        let _ =
            v.ts.compare_exchange(0, now, Ordering::SeqCst, Ordering::SeqCst);
        v.ts.load(Ordering::Acquire)
    }

    /// Current child of an edge (head version), stamping lazily.
    #[inline]
    fn read_child(&self, field: &AtomicU64) -> (u64, u64) {
        let head = field.load(Ordering::Acquire);
        let v = unsafe { VNode::from_raw(head) };
        self.init_ts(v);
        (v.child, head)
    }

    /// Child of an edge as of timestamp `ts`.
    fn read_child_at(&self, field: &AtomicU64, ts: u64) -> u64 {
        let mut raw = field.load(Ordering::Acquire);
        loop {
            let v = unsafe { VNode::from_raw(raw) };
            let vt = self.init_ts(v);
            if vt <= ts || v.prev == 0 {
                return v.child;
            }
            raw = v.prev;
        }
    }

    fn search(&self, k: u64) -> (&Node, &Node, &Node) {
        debug_assert!(k < INF1);
        let mut gp = unsafe { Node::from_raw(self.entry) };
        let (p_raw, _) = self.read_child(&gp.left);
        let mut p = unsafe { Node::from_raw(p_raw) };
        let mut l = {
            let f = if k < p.key { &p.left } else { &p.right };
            let (c, _) = self.read_child(f);
            unsafe { Node::from_raw(c) }
        };
        while !l.is_leaf() {
            gp = p;
            p = l;
            let f = if k < l.key { &l.left } else { &l.right };
            let (c, _) = self.read_child(f);
            l = unsafe { Node::from_raw(c) };
        }
        (gp, p, l)
    }

    /// Linearizable membership on the current tree.
    pub fn contains(&self, k: u64) -> bool {
        let _g = ebr::pin();
        let (_, _, l) = self.search(k);
        l.key == k
    }

    /// LLX a node, snapshotting its two version heads.
    fn llx_node(n: &Node) -> Llx<(u64, u64)> {
        llxscx::llx(&n.header, || {
            (
                n.left.load(Ordering::Acquire),
                n.right.load(Ordering::Acquire),
            )
        })
    }

    /// Insert `k`; returns `true` iff newly added.
    pub fn insert(&self, k: u64) -> bool {
        assert!(k < INF1, "keys must be < u64::MAX - 1");
        loop {
            let guard = ebr::pin();
            let (_gp, p, l) = self.search(k);
            if l.key == k {
                return false;
            }
            let Llx::Ok {
                info: pinfo,
                snapshot: psnap,
            } = Self::llx_node(p)
            else {
                continue;
            };
            let (field, head) = if k < p.key {
                (&p.left, psnap.0)
            } else {
                (&p.right, psnap.1)
            };
            // Re-validate that the head still leads to l.
            if unsafe { VNode::from_raw(head) }.child != l as *const Node as u64 {
                continue;
            }
            let Llx::Ok { info: linfo, .. } = Self::llx_node(l) else {
                continue;
            };
            let new_leaf = Node::leaf(k);
            let leaf_copy = Node::leaf(l.key);
            let (lc, rc, ikey) = if k < l.key {
                (new_leaf, leaf_copy, l.key)
            } else {
                (leaf_copy, new_leaf, k)
            };
            let internal = Node::internal(ikey, lc, rc);
            let new_head = VNode::alloc(internal, head);
            let ok = unsafe {
                llxscx::scx(
                    &[
                        llxscx::Linked {
                            header: &p.header,
                            info: pinfo,
                        },
                        llxscx::Linked {
                            header: &l.header,
                            info: linfo,
                        },
                    ],
                    0b10,
                    field as *const AtomicU64,
                    head,
                    new_head,
                )
            };
            if ok {
                self.init_ts(unsafe { VNode::from_raw(new_head) });
                unsafe { Self::retire_node(&guard, l as *const Node as u64) };
                return true;
            }
            unsafe {
                Self::dispose_node(internal);
                Self::dispose_node(new_leaf);
                Self::dispose_node(leaf_copy);
                drop(Box::from_raw(new_head as *mut VNode));
            }
        }
    }

    /// Remove `k`; returns `true` iff it was present.
    pub fn remove(&self, k: u64) -> bool {
        assert!(k < INF1);
        loop {
            let guard = ebr::pin();
            let (gp, p, l) = self.search(k);
            if l.key != k {
                return false;
            }
            let Llx::Ok {
                info: gpinfo,
                snapshot: gpsnap,
            } = Self::llx_node(gp)
            else {
                continue;
            };
            let (gfield, ghead) = if k < gp.key {
                (&gp.left, gpsnap.0)
            } else {
                (&gp.right, gpsnap.1)
            };
            if unsafe { VNode::from_raw(ghead) }.child != p as *const Node as u64 {
                continue;
            }
            let Llx::Ok {
                info: pinfo,
                snapshot: psnap,
            } = Self::llx_node(p)
            else {
                continue;
            };
            let (lhead, shead) = if k < p.key {
                (psnap.0, psnap.1)
            } else {
                (psnap.1, psnap.0)
            };
            if unsafe { VNode::from_raw(lhead) }.child != l as *const Node as u64 {
                continue;
            }
            let s_raw = unsafe { VNode::from_raw(shead) }.child;
            let s = unsafe { Node::from_raw(s_raw) };
            let Llx::Ok { info: sinfo, .. } = Self::llx_node(s) else {
                continue;
            };
            let Llx::Ok { info: linfo, .. } = Self::llx_node(l) else {
                continue;
            };
            // The sibling node itself is moved up (not copied): version
            // lists make node copies unnecessary for the unbalanced tree,
            // but we copy anyway so finalization semantics stay uniform.
            let s_copy = if s.is_leaf() {
                Node::leaf(s.key)
            } else {
                let (sl, _) = self.read_child(&s.left);
                let (sr, _) = self.read_child(&s.right);
                Node::internal(s.key, sl, sr)
            };
            let new_head = VNode::alloc(s_copy, ghead);
            let ok = unsafe {
                llxscx::scx(
                    &[
                        llxscx::Linked {
                            header: &gp.header,
                            info: gpinfo,
                        },
                        llxscx::Linked {
                            header: &p.header,
                            info: pinfo,
                        },
                        llxscx::Linked {
                            header: &l.header,
                            info: linfo,
                        },
                        llxscx::Linked {
                            header: &s.header,
                            info: sinfo,
                        },
                    ],
                    0b1110,
                    gfield as *const AtomicU64,
                    ghead,
                    new_head,
                )
            };
            if ok {
                self.init_ts(unsafe { VNode::from_raw(new_head) });
                unsafe {
                    Self::retire_node(&guard, p as *const Node as u64);
                    Self::retire_node(&guard, l as *const Node as u64);
                    Self::retire_node(&guard, s_raw);
                }
                return true;
            }
            unsafe {
                Self::dispose_node(s_copy);
                drop(Box::from_raw(new_head as *mut VNode));
            }
        }
    }

    unsafe fn retire_node(guard: &ebr::Guard, raw: u64) {
        unsafe fn free(p: *mut u8) {
            let node = unsafe { Box::from_raw(p as *mut Node) };
            // Retire the node's version lists along with it.
            for field in [&node.left, &node.right] {
                let mut v = field.load(Ordering::Acquire);
                while v != 0 {
                    let vn = unsafe { Box::from_raw(v as *mut VNode) };
                    v = vn.prev;
                }
            }
        }
        unsafe { guard.retire_with(raw as *mut u8, free) };
    }

    unsafe fn dispose_node(raw: u64) {
        let node = unsafe { Box::from_raw(raw as *mut Node) };
        for field in [&node.left, &node.right] {
            let v = field.load(Ordering::Acquire);
            if v != 0 {
                drop(unsafe { Box::from_raw(v as *mut VNode) });
            }
        }
    }

    /// Take a constant-time snapshot: advance the clock and remember the
    /// pre-advance timestamp.
    pub fn snapshot(&self) -> VcasSnapshot<'_> {
        let guard = ebr::pin();
        let ts = self.clock.fetch_add(1, Ordering::SeqCst);
        VcasSnapshot {
            set: self,
            ts,
            _guard: guard,
        }
    }

    /// Number of keys — Θ(n) traversal (unaugmented!).
    pub fn len_slow(&self) -> u64 {
        let snap = self.snapshot();
        snap.range_count(0, INF1 - 1)
    }
}

impl Default for VcasSet {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for VcasSet {
    fn drop(&mut self) {
        fn walk(set: &VcasSet, raw: u64) {
            let node = unsafe { Node::from_raw(raw) };
            if !node.is_leaf() {
                let (l, _) = set.read_child(&node.left);
                let (r, _) = set.read_child(&node.right);
                walk(set, l);
                walk(set, r);
            }
            // Only free current-version children; superseded subtrees leak
            // at drop (acceptable: drop runs at process teardown in the
            // benches; during execution EBR reclaims retired nodes).
            unsafe { VcasSet::dispose_node(raw) };
        }
        walk(self, self.entry);
    }
}

impl<'t> VcasSnapshot<'t> {
    fn root_at(&self) -> u64 {
        let entry = unsafe { Node::from_raw(self.set.entry) };
        let inf1 = self.set.read_child_at(&entry.left, self.ts);
        self.set
            .read_child_at(&unsafe { Node::from_raw(inf1) }.left, self.ts)
    }

    /// Membership within the snapshot.
    pub fn contains(&self, k: u64) -> bool {
        let mut n = unsafe { Node::from_raw(self.root_at()) };
        while !n.is_leaf() {
            let f = if k < n.key { &n.left } else { &n.right };
            n = unsafe { Node::from_raw(self.set.read_child_at(f, self.ts)) };
        }
        n.key == k
    }

    /// Count keys in `[lo, hi]` by traversing the snapshot — Θ(output +
    /// log n): the unaugmented cost the paper's Figs. 6–10 measure.
    pub fn range_count(&self, lo: u64, hi: u64) -> u64 {
        if lo > hi {
            return 0;
        }
        self.count_range(self.root_at(), lo, hi)
    }

    fn count_range(&self, raw: u64, lo: u64, hi: u64) -> u64 {
        let n = unsafe { Node::from_raw(raw) };
        if n.is_leaf() {
            return (n.key >= lo && n.key <= hi && n.key < INF1) as u64;
        }
        let mut total = 0;
        if lo < n.key {
            total += self.count_range(self.set.read_child_at(&n.left, self.ts), lo, hi);
        }
        if hi >= n.key {
            total += self.count_range(self.set.read_child_at(&n.right, self.ts), lo, hi);
        }
        total
    }

    /// Collect keys in `[lo, hi]`.
    pub fn range_collect(&self, lo: u64, hi: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.collect_range(self.root_at(), lo, hi, &mut out);
        out
    }

    fn collect_range(&self, raw: u64, lo: u64, hi: u64, out: &mut Vec<u64>) {
        let n = unsafe { Node::from_raw(raw) };
        if n.is_leaf() {
            if n.key >= lo && n.key <= hi && n.key < INF1 {
                out.push(n.key);
            }
            return;
        }
        if lo < n.key {
            self.collect_range(self.set.read_child_at(&n.left, self.ts), lo, hi, out);
        }
        if hi >= n.key {
            self.collect_range(self.set.read_child_at(&n.right, self.ts), lo, hi, out);
        }
    }

    /// Rank (keys ≤ k) — Θ(#keys ≤ k): brute-force traversal, exactly the
    /// unaugmented cost model of the paper's Fig. 7.
    pub fn rank(&self, k: u64) -> u64 {
        self.range_count(0, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn insert_contains_remove() {
        let s = VcasSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(!s.contains(5));
    }

    #[test]
    fn sequential_oracle() {
        use std::collections::BTreeSet;
        let s = VcasSet::new();
        let mut oracle = BTreeSet::new();
        let mut x = 777u64;
        for _ in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x % 128;
            if x & 1 == 0 {
                assert_eq!(s.insert(k), oracle.insert(k), "insert {k}");
            } else {
                assert_eq!(s.remove(k), oracle.remove(&k), "remove {k}");
            }
        }
        let snap = s.snapshot();
        let got = snap.range_collect(0, 127);
        let want: Vec<u64> = oracle.into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn snapshots_are_stable() {
        let s = VcasSet::new();
        for k in 0..100 {
            s.insert(k);
        }
        let snap = s.snapshot();
        assert_eq!(snap.range_count(0, 99), 100);
        for k in 100..200 {
            s.insert(k);
        }
        for k in 0..50 {
            s.remove(k);
        }
        // The old snapshot still sees the old state.
        assert_eq!(snap.range_count(0, 99), 100);
        assert!(snap.contains(0));
        assert!(!snap.contains(150));
        let snap2 = s.snapshot();
        assert_eq!(snap2.range_count(0, 199), 150);
    }

    #[test]
    fn rank_matches_definition() {
        let s = VcasSet::new();
        for k in (0..100).step_by(2) {
            s.insert(k);
        }
        let snap = s.snapshot();
        assert_eq!(snap.rank(50), 26); // 0,2,...,50
        assert_eq!(snap.rank(51), 26);
        assert_eq!(snap.rank(0), 1);
    }

    #[test]
    fn concurrent_disjoint_writers() {
        let s = Arc::new(VcasSet::new());
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        assert!(s.insert(t * 10_000 + i));
                    }
                    for i in (0..1000).step_by(2) {
                        assert!(s.remove(t * 10_000 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len_slow(), 8 * 500);
        ebr::flush();
    }

    #[test]
    fn snapshot_during_concurrent_updates_is_consistent_size() {
        let s = Arc::new(VcasSet::new());
        for k in 0..1000 {
            s.insert(k * 2);
        }
        let s2 = s.clone();
        let writer = std::thread::spawn(move || {
            for k in 0..1000 {
                s2.insert(k * 2 + 1);
            }
        });
        // Snapshot counts must never decrease for an insert-only workload.
        let mut last = 0;
        for _ in 0..50 {
            let snap = s.snapshot();
            let n = snap.range_count(0, u64::MAX - 2);
            assert!(n >= last, "snapshot counts must be monotone: {n} < {last}");
            last = n;
        }
        writer.join().unwrap();
    }
}
