//! # vcas — an unaugmented snapshot BST in the style of VcasBST
//!
//! Stand-in for the VcasBST of Wei et al. (PPoPP 2021) \[33\], the paper's
//! strongest *unaugmented binary* competitor. The defining cost model it
//! contributes to the evaluation:
//!
//! * **updates** pay no augmentation/propagation overhead (cheaper than
//!   BAT's inserts/deletes);
//! * **snapshots** are constant-time (a timestamp read);
//! * **queries** on a snapshot pay Θ(keys inspected): range queries cost
//!   Θ(log n + range), rank queries Θ(#keys ≤ k) — this is why the
//!   augmented trees win Figs. 6–10 past the crossover.
//!
//! Mechanism (following \[33\]'s versioned-CAS idea): every mutable child
//! edge is a [`vedge::VersionedEdge`] — a pointer to a timestamped
//! [`vedge::VersionRecord`] with a `prev` pointer to the edge's older
//! versions. Updates install a new record (via the same LLX/SCX
//! coordination our other trees use) whose timestamp is stamped lazily
//! from the set's clock; snapshot readers advance the clock and traverse
//! the version lists to the newest version no newer than their timestamp.
//! The record layout, stamping protocol, snapshot registry and trimming
//! are shared with `fanout` through the `vedge` crate.
//!
//! **PR 3 fixes over the seed:** version records used to be
//! `Box::into_raw`'d (bypassing the EBR pool, so every update paid a
//! malloc) and whole version lists were kept until node reclamation, so
//! update-heavy runs grew memory linearly in the update count. Records now
//! come from the layout-keyed pool and every successful publish trims its
//! edge's list down to what live snapshots can still reach
//! ([`vedge::trim`]) — an idle edge's history is one record.

use sched::atomic::AtomicU64;

use llxscx::{Llx, RecordHeader};
use vedge::{SnapRegistry, VersionRecord, VersionedEdge};

/// A tree node. Leaf-oriented: real keys at the leaves; `u64::MAX` and
/// `u64::MAX - 1` serve as the two sentinel infinities (keys must be
/// `< u64::MAX - 1`).
pub struct Node {
    header: RecordHeader,
    key: u64,
    left: VersionedEdge, // head == 0 for leaves
    right: VersionedEdge,
}

const INF1: u64 = u64::MAX - 1;
const INF2: u64 = u64::MAX;

impl Node {
    fn leaf(key: u64) -> u64 {
        Box::into_raw(Box::new(Node {
            header: RecordHeader::new(),
            key,
            left: VersionedEdge::null(),
            right: VersionedEdge::null(),
        })) as u64
    }

    fn internal(key: u64, left_child: u64, right_child: u64) -> u64 {
        Box::into_raw(Box::new(Node {
            header: RecordHeader::new(),
            key,
            left: VersionedEdge::new(left_child),
            right: VersionedEdge::new(right_child),
        })) as u64
    }

    #[inline]
    unsafe fn from_raw<'g>(raw: u64) -> &'g Node {
        unsafe { &*(raw as *const Node) }
    }

    #[inline]
    fn is_leaf(&self) -> bool {
        self.left.head() == 0
    }
}

/// The VcasBST-style set.
pub struct VcasSet {
    entry: u64,
    clock: AtomicU64,
    snaps: SnapRegistry,
}

unsafe impl Send for VcasSet {}
unsafe impl Sync for VcasSet {}

/// A constant-time snapshot: a timestamp plus an epoch guard pinning the
/// version lists. Registered in the set's [`SnapRegistry`] so trimming
/// never cuts a version this snapshot can reach.
pub struct VcasSnapshot<'t> {
    set: &'t VcasSet,
    ts: u64,
    _guard: ebr::Guard,
}

impl Drop for VcasSnapshot<'_> {
    fn drop(&mut self) {
        self.set.snaps.deregister();
    }
}

impl VcasSet {
    /// Empty set with the standard two-level sentinel structure.
    pub fn new() -> Self {
        let real_slot = Node::leaf(INF1);
        let inf1_right = Node::leaf(INF1);
        let inf1 = Node::internal(INF1, real_slot, inf1_right);
        let inf2_leaf = Node::leaf(INF2);
        let entry = Node::internal(INF2, inf1, inf2_leaf);
        VcasSet {
            entry,
            clock: AtomicU64::new(1),
            snaps: SnapRegistry::new(),
        }
    }

    /// Current child of an edge (head version), stamping lazily.
    #[inline]
    fn read_child(&self, edge: &VersionedEdge) -> (u64, u64) {
        edge.read(&self.clock)
    }

    fn search(&self, k: u64) -> (&Node, &Node, &Node) {
        debug_assert!(k < INF1);
        let mut gp = unsafe { Node::from_raw(self.entry) };
        let (p_raw, _) = self.read_child(&gp.left);
        let mut p = unsafe { Node::from_raw(p_raw) };
        let mut l = {
            let e = if k < p.key { &p.left } else { &p.right };
            let (c, _) = self.read_child(e);
            unsafe { Node::from_raw(c) }
        };
        while !l.is_leaf() {
            gp = p;
            p = l;
            let e = if k < l.key { &l.left } else { &l.right };
            let (c, _) = self.read_child(e);
            l = unsafe { Node::from_raw(c) };
        }
        (gp, p, l)
    }

    /// Linearizable membership on the current tree.
    pub fn contains(&self, k: u64) -> bool {
        let _g = ebr::pin();
        let (_, _, l) = self.search(k);
        l.key == k
    }

    /// LLX a node, snapshotting its two version heads.
    fn llx_node(n: &Node) -> Llx<(u64, u64)> {
        llxscx::llx(&n.header, || (n.left.head(), n.right.head()))
    }

    /// Insert `k`; returns `true` iff newly added.
    pub fn insert(&self, k: u64) -> bool {
        assert!(k < INF1, "keys must be < u64::MAX - 1");
        loop {
            let guard = ebr::pin();
            let (_gp, p, l) = self.search(k);
            if l.key == k {
                return false;
            }
            let Llx::Ok {
                info: pinfo,
                snapshot: psnap,
            } = Self::llx_node(p)
            else {
                continue;
            };
            let (edge, head) = if k < p.key {
                (&p.left, psnap.0)
            } else {
                (&p.right, psnap.1)
            };
            // Re-validate that the head still leads to l.
            if unsafe { VersionRecord::from_raw(head) }.child() != l as *const Node as u64 {
                continue;
            }
            let Llx::Ok { info: linfo, .. } = Self::llx_node(l) else {
                continue;
            };
            let new_leaf = Node::leaf(k);
            let leaf_copy = Node::leaf(l.key);
            let (lc, rc, ikey) = if k < l.key {
                (new_leaf, leaf_copy, l.key)
            } else {
                (leaf_copy, new_leaf, k)
            };
            let internal = Node::internal(ikey, lc, rc);
            let new_head = VersionRecord::alloc(internal, head);
            let ok = unsafe {
                llxscx::scx(
                    &[
                        llxscx::Linked {
                            header: &p.header,
                            info: pinfo,
                        },
                        llxscx::Linked {
                            header: &l.header,
                            info: linfo,
                        },
                    ],
                    0b10,
                    edge.cell() as *const AtomicU64,
                    head,
                    new_head,
                )
            };
            if ok {
                unsafe { VersionRecord::from_raw(new_head) }.stamp(&self.clock);
                unsafe { Self::retire_node(&guard, l as *const Node as u64) };
                vedge::trim(&guard, new_head, self.snaps.min_active(), &self.clock);
                return true;
            }
            unsafe {
                Self::dispose_node(internal);
                Self::dispose_node(new_leaf);
                Self::dispose_node(leaf_copy);
                ebr::pool::dispose_pooled(new_head as *mut VersionRecord);
            }
        }
    }

    /// Remove `k`; returns `true` iff it was present.
    pub fn remove(&self, k: u64) -> bool {
        assert!(k < INF1);
        loop {
            let guard = ebr::pin();
            let (gp, p, l) = self.search(k);
            if l.key != k {
                return false;
            }
            let Llx::Ok {
                info: gpinfo,
                snapshot: gpsnap,
            } = Self::llx_node(gp)
            else {
                continue;
            };
            let (gedge, ghead) = if k < gp.key {
                (&gp.left, gpsnap.0)
            } else {
                (&gp.right, gpsnap.1)
            };
            if unsafe { VersionRecord::from_raw(ghead) }.child() != p as *const Node as u64 {
                continue;
            }
            let Llx::Ok {
                info: pinfo,
                snapshot: psnap,
            } = Self::llx_node(p)
            else {
                continue;
            };
            let (lhead, shead) = if k < p.key {
                (psnap.0, psnap.1)
            } else {
                (psnap.1, psnap.0)
            };
            if unsafe { VersionRecord::from_raw(lhead) }.child() != l as *const Node as u64 {
                continue;
            }
            let s_raw = unsafe { VersionRecord::from_raw(shead) }.child();
            let s = unsafe { Node::from_raw(s_raw) };
            let Llx::Ok { info: sinfo, .. } = Self::llx_node(s) else {
                continue;
            };
            let Llx::Ok { info: linfo, .. } = Self::llx_node(l) else {
                continue;
            };
            // The sibling node itself is moved up (not copied): version
            // lists make node copies unnecessary for the unbalanced tree,
            // but we copy anyway so finalization semantics stay uniform.
            let s_copy = if s.is_leaf() {
                Node::leaf(s.key)
            } else {
                let (sl, _) = self.read_child(&s.left);
                let (sr, _) = self.read_child(&s.right);
                Node::internal(s.key, sl, sr)
            };
            let new_head = VersionRecord::alloc(s_copy, ghead);
            let ok = unsafe {
                llxscx::scx(
                    &[
                        llxscx::Linked {
                            header: &gp.header,
                            info: gpinfo,
                        },
                        llxscx::Linked {
                            header: &p.header,
                            info: pinfo,
                        },
                        llxscx::Linked {
                            header: &l.header,
                            info: linfo,
                        },
                        llxscx::Linked {
                            header: &s.header,
                            info: sinfo,
                        },
                    ],
                    0b1110,
                    gedge.cell() as *const AtomicU64,
                    ghead,
                    new_head,
                )
            };
            if ok {
                unsafe { VersionRecord::from_raw(new_head) }.stamp(&self.clock);
                unsafe {
                    Self::retire_node(&guard, p as *const Node as u64);
                    Self::retire_node(&guard, l as *const Node as u64);
                    Self::retire_node(&guard, s_raw);
                }
                vedge::trim(&guard, new_head, self.snaps.min_active(), &self.clock);
                return true;
            }
            unsafe {
                Self::dispose_node(s_copy);
                ebr::pool::dispose_pooled(new_head as *mut VersionRecord);
            }
        }
    }

    unsafe fn retire_node(guard: &ebr::Guard, raw: u64) {
        unsafe fn free(p: *mut u8) {
            let node = unsafe { Box::from_raw(p as *mut Node) };
            // The node's version lists go back to the pool with it — the
            // records only, never the superseded children they point to
            // (those are retired by their own replacement).
            for edge in [&node.left, &node.right] {
                unsafe { vedge::dispose_chain(edge.head()) };
            }
        }
        unsafe { guard.retire_with(raw as *mut u8, free) };
    }

    unsafe fn dispose_node(raw: u64) {
        let node = unsafe { Box::from_raw(raw as *mut Node) };
        for edge in [&node.left, &node.right] {
            unsafe { vedge::dispose_chain(edge.head()) };
        }
    }

    /// Take a constant-time snapshot: advance the clock and remember the
    /// pre-advance timestamp, announcing it so trimming spares everything
    /// the snapshot can read.
    pub fn snapshot(&self) -> VcasSnapshot<'_> {
        let guard = ebr::pin();
        let ts = self.snaps.register(&self.clock);
        VcasSnapshot {
            set: self,
            ts,
            _guard: guard,
        }
    }

    /// Number of keys — Θ(n) traversal (unaugmented!).
    pub fn len_slow(&self) -> u64 {
        let snap = self.snapshot();
        snap.range_count(0, INF1 - 1)
    }

    /// Longest version chain reachable from the current tree (diagnostic
    /// for the trimming tests; quiescent callers only).
    #[doc(hidden)]
    pub fn debug_max_version_chain(&self) -> usize {
        let _g = ebr::pin();
        fn chain_len(head: u64) -> usize {
            let mut n = 0;
            let mut raw = head;
            while raw != 0 {
                n += 1;
                raw = unsafe { VersionRecord::from_raw(raw) }.prev();
            }
            n
        }
        fn rec(set: &VcasSet, raw: u64, max: &mut usize) {
            let node = unsafe { Node::from_raw(raw) };
            if node.is_leaf() {
                return;
            }
            for edge in [&node.left, &node.right] {
                *max = (*max).max(chain_len(edge.head()));
                let (c, _) = set.read_child(edge);
                rec(set, c, max);
            }
        }
        let mut max = 0;
        rec(self, self.entry, &mut max);
        max
    }
}

impl Default for VcasSet {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for VcasSet {
    fn drop(&mut self) {
        fn walk(set: &VcasSet, raw: u64) {
            let node = unsafe { Node::from_raw(raw) };
            if !node.is_leaf() {
                let (l, _) = set.read_child(&node.left);
                let (r, _) = set.read_child(&node.right);
                walk(set, l);
                walk(set, r);
            }
            // Current-version children only; the chains themselves are
            // disposed as records (superseded children were retired when
            // replaced, or are pending in EBR).
            unsafe { VcasSet::dispose_node(raw) };
        }
        walk(self, self.entry);
    }
}

impl<'t> VcasSnapshot<'t> {
    fn read_child_at(&self, edge: &VersionedEdge) -> u64 {
        edge.read_at(&self.set.clock, self.ts)
    }

    fn root_at(&self) -> u64 {
        let entry = unsafe { Node::from_raw(self.set.entry) };
        let inf1 = self.read_child_at(&entry.left);
        self.read_child_at(&unsafe { Node::from_raw(inf1) }.left)
    }

    /// Membership within the snapshot.
    pub fn contains(&self, k: u64) -> bool {
        let mut n = unsafe { Node::from_raw(self.root_at()) };
        while !n.is_leaf() {
            let e = if k < n.key { &n.left } else { &n.right };
            n = unsafe { Node::from_raw(self.read_child_at(e)) };
        }
        n.key == k
    }

    /// Count keys in `[lo, hi]` by traversing the snapshot — Θ(output +
    /// log n): the unaugmented cost the paper's Figs. 6–10 measure.
    pub fn range_count(&self, lo: u64, hi: u64) -> u64 {
        if lo > hi {
            return 0;
        }
        self.count_range(self.root_at(), lo, hi)
    }

    fn count_range(&self, raw: u64, lo: u64, hi: u64) -> u64 {
        let n = unsafe { Node::from_raw(raw) };
        if n.is_leaf() {
            return (n.key >= lo && n.key <= hi && n.key < INF1) as u64;
        }
        let mut total = 0;
        if lo < n.key {
            total += self.count_range(self.read_child_at(&n.left), lo, hi);
        }
        if hi >= n.key {
            total += self.count_range(self.read_child_at(&n.right), lo, hi);
        }
        total
    }

    /// Collect keys in `[lo, hi]`.
    pub fn range_collect(&self, lo: u64, hi: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.collect_range(self.root_at(), lo, hi, &mut out);
        out
    }

    fn collect_range(&self, raw: u64, lo: u64, hi: u64, out: &mut Vec<u64>) {
        let n = unsafe { Node::from_raw(raw) };
        if n.is_leaf() {
            if n.key >= lo && n.key <= hi && n.key < INF1 {
                out.push(n.key);
            }
            return;
        }
        if lo < n.key {
            self.collect_range(self.read_child_at(&n.left), lo, hi, out);
        }
        if hi >= n.key {
            self.collect_range(self.read_child_at(&n.right), lo, hi, out);
        }
    }

    /// Rank (keys ≤ k) — Θ(#keys ≤ k): brute-force traversal, exactly the
    /// unaugmented cost model of the paper's Fig. 7.
    pub fn rank(&self, k: u64) -> u64 {
        self.range_count(0, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn insert_contains_remove() {
        let s = VcasSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(!s.contains(5));
    }

    #[test]
    fn sequential_oracle() {
        use std::collections::BTreeSet;
        let s = VcasSet::new();
        let mut oracle = BTreeSet::new();
        let mut x = 777u64;
        for _ in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x % 128;
            if x & 1 == 0 {
                assert_eq!(s.insert(k), oracle.insert(k), "insert {k}");
            } else {
                assert_eq!(s.remove(k), oracle.remove(&k), "remove {k}");
            }
        }
        let snap = s.snapshot();
        let got = snap.range_collect(0, 127);
        let want: Vec<u64> = oracle.into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn snapshots_are_stable() {
        let s = VcasSet::new();
        for k in 0..100 {
            s.insert(k);
        }
        let snap = s.snapshot();
        assert_eq!(snap.range_count(0, 99), 100);
        for k in 100..200 {
            s.insert(k);
        }
        for k in 0..50 {
            s.remove(k);
        }
        // The old snapshot still sees the old state.
        assert_eq!(snap.range_count(0, 99), 100);
        assert!(snap.contains(0));
        assert!(!snap.contains(150));
        let snap2 = s.snapshot();
        assert_eq!(snap2.range_count(0, 199), 150);
    }

    #[test]
    fn rank_matches_definition() {
        let s = VcasSet::new();
        for k in (0..100).step_by(2) {
            s.insert(k);
        }
        let snap = s.snapshot();
        assert_eq!(snap.rank(50), 26); // 0,2,...,50
        assert_eq!(snap.rank(51), 26);
        assert_eq!(snap.rank(0), 1);
    }

    #[test]
    fn concurrent_disjoint_writers() {
        let s = Arc::new(VcasSet::new());
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        assert!(s.insert(t * 10_000 + i));
                    }
                    for i in (0..1000).step_by(2) {
                        assert!(s.remove(t * 10_000 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len_slow(), 8 * 500);
        ebr::flush();
    }

    #[test]
    fn snapshot_during_concurrent_updates_is_consistent_size() {
        let s = Arc::new(VcasSet::new());
        for k in 0..1000 {
            s.insert(k * 2);
        }
        let s2 = s.clone();
        let writer = std::thread::spawn(move || {
            for k in 0..1000 {
                s2.insert(k * 2 + 1);
            }
        });
        // Snapshot counts must never decrease for an insert-only workload.
        let mut last = 0;
        for _ in 0..50 {
            let snap = s.snapshot();
            let n = snap.range_count(0, u64::MAX - 2);
            assert!(n >= last, "snapshot counts must be monotone: {n} < {last}");
            last = n;
        }
        writer.join().unwrap();
    }

    #[test]
    fn version_lists_stay_trimmed_without_snapshots() {
        // Seed bug: update-heavy runs kept every version until node
        // reclamation, growing memory linearly. With writer-driven
        // trimming, churn on a fixed key set leaves bounded chains.
        let s = VcasSet::new();
        for k in 0..64 {
            s.insert(k);
        }
        for round in 0..200u64 {
            for k in 0..64 {
                if (k + round).is_multiple_of(2) {
                    s.remove(k);
                } else {
                    s.insert(k);
                }
            }
        }
        assert!(
            s.debug_max_version_chain() <= 2,
            "chains grew to {}",
            s.debug_max_version_chain()
        );
        ebr::flush();
    }

    #[test]
    fn live_snapshot_preserves_history_until_dropped() {
        let s = VcasSet::new();
        for k in 0..32 {
            s.insert(k);
        }
        let snap = s.snapshot();
        for _ in 0..30 {
            s.remove(3);
            s.insert(3);
        }
        assert!(s.debug_max_version_chain() > 2);
        assert_eq!(snap.range_count(0, 31), 32);
        drop(snap);
        for _ in 0..2 {
            s.remove(3);
            s.insert(3);
        }
        assert!(s.debug_max_version_chain() <= 3);
        ebr::flush();
    }

    #[test]
    fn version_records_come_from_the_pool() {
        let s = VcasSet::new();
        for k in 0..512 {
            s.insert(k);
        }
        // Warm-up: stock the pool with the record + node layout classes.
        for round in 0..6u64 {
            for k in 0..256 {
                if (k + round).is_multiple_of(2) {
                    s.remove(k);
                } else {
                    s.insert(k);
                }
            }
            ebr::flush();
        }
        let (h0, _, _) = ebr::pool::local_stats();
        for k in 0..256 {
            s.remove(k);
            s.insert(k);
        }
        let (h1, _, _) = ebr::pool::local_stats();
        assert!(
            h1 > h0,
            "steady-state vcas updates must recycle version records"
        );
        ebr::flush();
    }
}
