//! Integration tests for the extended query set (floor/ceiling/
//! select-in-range/quantile/interval stabbing) under concurrency and
//! against oracles.

use std::collections::BTreeMap;
use std::sync::Arc;

use cbat::core::IntervalMap;
use cbat::{BatMap, MinMaxAug, PairAug, SumAug};

#[test]
fn floor_ceiling_oracle_large() {
    let m = BatMap::<u64, u64>::new();
    let mut oracle = BTreeMap::new();
    let mut x = 2024u64;
    for _ in 0..3_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let k = x % 10_000;
        m.insert(k, k);
        oracle.insert(k, k);
    }
    let snap = m.snapshot();
    for probe in (0..10_500).step_by(111) {
        assert_eq!(
            snap.floor(&probe).map(|p| p.0),
            oracle.range(..=probe).next_back().map(|(k, _)| *k),
            "floor({probe})"
        );
        assert_eq!(
            snap.predecessor(&probe).map(|p| p.0),
            oracle.range(..probe).next_back().map(|(k, _)| *k),
            "pred({probe})"
        );
        assert_eq!(
            snap.ceiling(&probe).map(|p| p.0),
            oracle.range(probe..).next().map(|(k, _)| *k),
            "ceil({probe})"
        );
        assert_eq!(
            snap.successor(&probe).map(|p| p.0),
            oracle.range(probe + 1..).next().map(|(k, _)| *k),
            "succ({probe})"
        );
    }
}

#[test]
fn select_in_range_oracle() {
    let m = BatMap::<u64, ()>::new();
    for k in (0..500u64).filter(|k| k % 3 != 0) {
        m.insert(k, ());
    }
    let snap = m.snapshot();
    let all: Vec<u64> = snap.keys();
    for (lo, hi) in [(0u64, 499u64), (10, 20), (100, 100), (400, 300)] {
        let want: Vec<u64> = all
            .iter()
            .copied()
            .filter(|k| *k >= lo && *k <= hi)
            .collect();
        for i in 0..want.len() as u64 + 1 {
            assert_eq!(
                snap.select_in_range(&lo, &hi, i).map(|p| p.0),
                want.get(i as usize).copied(),
                "select_in_range({lo},{hi},{i})"
            );
        }
    }
}

#[test]
fn quantiles_track_distribution_under_writes() {
    let m = Arc::new(BatMap::<u64, ()>::new());
    let writer = {
        let m = m.clone();
        std::thread::spawn(move || {
            for k in 0..20_000u64 {
                m.insert(k, ());
            }
        })
    };
    // During a uniform 0..n insert stream, the p50 of any snapshot must
    // sit near the middle of that snapshot's own key range.
    loop {
        let snap = m.snapshot();
        let n = snap.len();
        if n >= 1_000 {
            let p50 = snap.quantile(0.5).unwrap().0;
            let max = snap.last().unwrap().0;
            assert!(
                p50 >= max / 4 && p50 <= 3 * max / 4 + 1,
                "p50 {p50} wildly off for max {max}"
            );
        }
        if n == 20_000 {
            break;
        }
        std::thread::yield_now();
    }
    writer.join().unwrap();
    ebr::flush();
}

#[test]
fn composed_augmentation_end_to_end() {
    type Both = PairAug<SumAug, MinMaxAug>;
    let m = BatMap::<u64, u64, Both>::new();
    let mut x = 7u64;
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    for _ in 0..2_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let k = x % 300;
        if x & 1 == 0 {
            if oracle.insert(k, k * 7).is_none() {
                m.insert(k, k * 7);
            }
        } else {
            oracle.remove(&k);
            m.remove(&k);
        }
    }
    for (lo, hi) in [(0u64, 299u64), (50, 99), (200, 150)] {
        let vals: Vec<u64> = oracle
            .range(lo.min(hi)..=hi.max(lo))
            .filter(|_| lo <= hi)
            .map(|(_, v)| *v)
            .collect();
        let (sum, mm) = m.range_aggregate(&lo, &hi);
        assert_eq!(sum, vals.iter().sum::<u64>(), "sum [{lo},{hi}]");
        let want_mm = if vals.is_empty() {
            None
        } else {
            Some((*vals.iter().min().unwrap(), *vals.iter().max().unwrap()))
        };
        assert_eq!(mm, want_mm, "minmax [{lo},{hi}]");
    }
}

#[test]
fn interval_map_under_concurrent_churn() {
    let m = Arc::new(IntervalMap::new());
    // Fixed set of long-lived intervals + churning short ones.
    for id in 0..50u64 {
        m.insert(id * 10, id * 10 + 100, 1_000_000 + id);
    }
    let writers: Vec<_> = (0..3u64)
        .map(|t| {
            let m = m.clone();
            std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let id = t * 100_000 + i;
                    let s = (t * 37 + i * 13) % 800;
                    m.insert(s, s + 5, id);
                    m.remove(s, id);
                }
            })
        })
        .collect();
    // Long-lived intervals must always be reported by stabs they cover.
    for _ in 0..200 {
        let hits = m.stab(255);
        let fixed: Vec<_> = hits.iter().filter(|(_, _, id)| *id >= 1_000_000).collect();
        // Intervals [id*10, id*10+100] containing 255: ids 16..=25.
        assert_eq!(fixed.len(), 10, "fixed intervals missing: {hits:?}");
    }
    for w in writers {
        w.join().unwrap();
    }
    assert_eq!(m.len(), 50);
    ebr::flush();
}
