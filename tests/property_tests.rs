//! Property-based tests (proptest): sequential op sequences against
//! `BTreeMap`/`BTreeSet` oracles for every tree in the workspace, plus
//! structural and query invariants.

#![cfg(feature = "proptest")]

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;

use cbat::{BatMap, BatSet, DelegationPolicy, SumAug};

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u16),
    Remove(u16),
    Contains(u16),
    Rank(u16),
    Select(u16),
    RangeCount(u16, u16),
    RangeSum(u16, u16),
    Len,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u16>()).prop_map(|(k, v)| Op::Insert(k % 512, v)),
        any::<u16>().prop_map(|k| Op::Remove(k % 512)),
        any::<u16>().prop_map(|k| Op::Contains(k % 512)),
        any::<u16>().prop_map(|k| Op::Rank(k % 512)),
        any::<u16>().prop_map(Op::Select),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::RangeCount(a % 512, b % 512)),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::RangeSum(a % 512, b % 512)),
        Just(Op::Len),
    ]
}

fn oracle_rank(oracle: &BTreeMap<u64, u64>, k: u64) -> u64 {
    oracle.range(..=k).count() as u64
}

fn check_sequence(map: &BatMap<u64, u64, SumAug>, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                let (k, v) = (k as u64, v as u64);
                let expect = !oracle.contains_key(&k);
                if expect {
                    oracle.insert(k, v);
                }
                prop_assert_eq!(map.insert(k, v), expect);
            }
            Op::Remove(k) => {
                let k = k as u64;
                prop_assert_eq!(map.remove(&k), oracle.remove(&k).is_some());
            }
            Op::Contains(k) => {
                let k = k as u64;
                prop_assert_eq!(map.contains(&k), oracle.contains_key(&k));
                prop_assert_eq!(map.get(&k), oracle.get(&k).copied());
            }
            Op::Rank(k) => {
                let k = k as u64;
                prop_assert_eq!(map.rank(&k), oracle_rank(&oracle, k));
            }
            Op::Select(i) => {
                let i = i as u64;
                let expect = oracle.iter().nth(i as usize).map(|(k, v)| (*k, *v));
                prop_assert_eq!(map.select(i), expect);
            }
            Op::RangeCount(a, b) => {
                let (lo, hi) = (a.min(b) as u64, a.max(b) as u64);
                let expect = oracle.range(lo..=hi).count() as u64;
                prop_assert_eq!(map.range_count(&lo, &hi), expect);
            }
            Op::RangeSum(a, b) => {
                let (lo, hi) = (a.min(b) as u64, a.max(b) as u64);
                let expect: u64 = oracle.range(lo..=hi).map(|(_, v)| *v).sum();
                prop_assert_eq!(map.range_aggregate(&lo, &hi), expect);
            }
            Op::Len => {
                prop_assert_eq!(map.len(), oracle.len() as u64);
            }
        }
    }
    // Final full-state comparison.
    let snap = map.snapshot();
    let got: Vec<(u64, u64)> = snap.iter().collect();
    let want: Vec<(u64, u64)> = oracle.into_iter().collect();
    prop_assert_eq!(got, want);
    Ok(())
}

// Alias kept for readability at call sites.
fn check(map: &BatMap<u64, u64, SumAug>, ops: &[Op]) -> Result<(), TestCaseError> {
    check_sequence(map, ops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bat_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let map = BatMap::<u64, u64, SumAug>::new();
        check(&map, &ops)?;
        map.node_tree().validate(true).expect("chromatic invariants");
    }

    #[test]
    fn bat_del_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let map = BatMap::<u64, u64, SumAug>::with_policy(DelegationPolicy::Del {
            timeout: Some(std::time::Duration::from_millis(1)),
        });
        check(&map, &ops)?;
    }

    #[test]
    fn frbst_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let map = BatMap::<u64, u64, SumAug>::new_unbalanced();
        check(&map, &ops)?;
    }

    #[test]
    fn bulk_build_equals_incremental(
        keys in proptest::collection::btree_set(any::<u16>(), 0..400)
    ) {
        let pairs: Vec<(u64, u64)> =
            keys.iter().map(|&k| (k as u64, k as u64 * 3)).collect();
        let bulk = BatMap::<u64, u64>::bulk_build(pairs.clone());
        let inc = BatMap::<u64, u64>::new();
        for (k, v) in &pairs {
            inc.insert(*k, *v);
        }
        prop_assert_eq!(bulk.len(), inc.len());
        prop_assert_eq!(bulk.snapshot().keys(), inc.snapshot().keys());
        for (k, _) in pairs.iter().take(32) {
            prop_assert_eq!(bulk.rank(k), inc.rank(k));
            prop_assert_eq!(bulk.get(k), inc.get(k));
        }
        bulk.node_tree().validate(true).expect("bulk chromatic invariants");
    }

    #[test]
    fn vcas_matches_btreeset(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let set = cbat::vcas::VcasSet::new();
        let mut oracle: BTreeSet<u64> = BTreeSet::new();
        for op in &ops {
            match *op {
                Op::Insert(k, _) => {
                    let k = k as u64;
                    prop_assert_eq!(set.insert(k), oracle.insert(k));
                }
                Op::Remove(k) => {
                    let k = k as u64;
                    prop_assert_eq!(set.remove(k), oracle.remove(&k));
                }
                Op::Contains(k) => {
                    let k = k as u64;
                    prop_assert_eq!(set.contains(k), oracle.contains(&k));
                }
                Op::RangeCount(a, b) => {
                    let (lo, hi) = (a.min(b) as u64, a.max(b) as u64);
                    let snap = set.snapshot();
                    prop_assert_eq!(
                        snap.range_count(lo, hi),
                        oracle.range(lo..=hi).count() as u64
                    );
                }
                Op::Rank(k) => {
                    let k = k as u64;
                    prop_assert_eq!(
                        set.snapshot().rank(k),
                        oracle.range(..=k).count() as u64
                    );
                }
                _ => {}
            }
        }
        let want: Vec<u64> = oracle.iter().copied().collect();
        prop_assert_eq!(set.snapshot().range_collect(0, u64::MAX - 2), want);
    }

    #[test]
    fn fanout_matches_btreeset(ops in proptest::collection::vec(op_strategy(), 1..250)) {
        let set = cbat::fanout::FanoutSet::new();
        let mut oracle: BTreeSet<u64> = BTreeSet::new();
        for op in &ops {
            match *op {
                Op::Insert(k, _) => {
                    let k = k as u64;
                    prop_assert_eq!(set.insert(k), oracle.insert(k));
                }
                Op::Remove(k) => {
                    let k = k as u64;
                    prop_assert_eq!(set.remove(k), oracle.remove(&k));
                }
                Op::Contains(k) => {
                    let k = k as u64;
                    prop_assert_eq!(set.contains(k), oracle.contains(&k));
                }
                Op::RangeCount(a, b) => {
                    let (lo, hi) = (a.min(b) as u64, a.max(b) as u64);
                    prop_assert_eq!(
                        set.snapshot().range_count(lo, hi),
                        oracle.range(lo..=hi).count() as u64
                    );
                }
                _ => {}
            }
        }
        let want: Vec<u64> = oracle.iter().copied().collect();
        prop_assert_eq!(set.snapshot().range_collect(0, u64::MAX), want);
    }

    #[test]
    fn chromatic_invariants_hold_for_any_sequence(
        ops in proptest::collection::vec((any::<u16>(), any::<bool>()), 1..400)
    ) {
        let set = cbat::chromatic::ChromaticSet::<u64>::new();
        let mut oracle = BTreeSet::new();
        for (k, ins) in &ops {
            let k = (*k % 256) as u64;
            if *ins {
                prop_assert_eq!(set.insert(k), oracle.insert(k));
            } else {
                prop_assert_eq!(set.remove(&k), oracle.remove(&k));
            }
        }
        let shape = set.tree().validate(true).expect("invariants");
        prop_assert_eq!(shape.keys, oracle.len());
        let want: Vec<u64> = oracle.iter().copied().collect();
        prop_assert_eq!(set.collect_keys(), want);
    }

    #[test]
    fn rank_select_duality(keys in proptest::collection::btree_set(any::<u16>(), 1..200)) {
        let set = BatSet::<u64>::new();
        for &k in &keys {
            set.insert(k as u64);
        }
        let n = set.len();
        prop_assert_eq!(n, keys.len() as u64);
        let snap = set.snapshot();
        for i in 0..n {
            let k = snap.select(i).map(|(k, _)| k).unwrap();
            prop_assert_eq!(snap.rank(&k), i + 1);
            prop_assert_eq!(snap.rank_exclusive(&k), i);
        }
    }

    #[test]
    fn snapshot_frozen_under_any_later_ops(
        initial in proptest::collection::btree_set(any::<u16>(), 1..100),
        later in proptest::collection::vec((any::<u16>(), any::<bool>()), 1..100),
    ) {
        let set = BatSet::<u64>::new();
        for &k in &initial {
            set.insert(k as u64);
        }
        let snap = set.snapshot();
        for (k, ins) in &later {
            if *ins {
                set.insert(*k as u64);
            } else {
                set.remove(&(*k as u64));
            }
        }
        let want: Vec<u64> = initial.iter().map(|&k| k as u64).collect();
        prop_assert_eq!(snap.keys(), want);
    }
}
