//! Property-based tests: random op sequences against `BTreeMap`/`BTreeSet`
//! oracles for every tree in the workspace, plus structural and query
//! invariants.
//!
//! Driven by the deterministic xorshift generator from `workloads::rng`
//! (not the external `proptest` crate, which this environment does not
//! vendor): every case derives from a fixed seed, so the suite runs
//! unconditionally and failures reproduce exactly.

use std::collections::{BTreeMap, BTreeSet};

use cbat::workloads::Xorshift;
use cbat::{BatMap, BatSet, DelegationPolicy, SumAug};

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Contains(u64),
    Rank(u64),
    Select(u64),
    RangeCount(u64, u64),
    RangeSum(u64, u64),
    Len,
}

fn random_op(rng: &mut Xorshift) -> Op {
    match rng.below(8) {
        0 => Op::Insert(rng.below(512), rng.below(1 << 16)),
        1 => Op::Remove(rng.below(512)),
        2 => Op::Contains(rng.below(512)),
        3 => Op::Rank(rng.below(512)),
        4 => Op::Select(rng.below(1 << 16)),
        5 => Op::RangeCount(rng.below(512), rng.below(512)),
        6 => Op::RangeSum(rng.below(512), rng.below(512)),
        _ => Op::Len,
    }
}

fn random_ops(seed: u64, max_len: u64) -> Vec<Op> {
    let mut rng = Xorshift::new(seed);
    let len = 1 + rng.below(max_len) as usize;
    (0..len).map(|_| random_op(&mut rng)).collect()
}

fn oracle_rank(oracle: &BTreeMap<u64, u64>, k: u64) -> u64 {
    oracle.range(..=k).count() as u64
}

fn check(map: &BatMap<u64, u64, SumAug>, ops: &[Op]) {
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                let expect = !oracle.contains_key(&k);
                if expect {
                    oracle.insert(k, v);
                }
                assert_eq!(map.insert(k, v), expect);
            }
            Op::Remove(k) => {
                assert_eq!(map.remove(&k), oracle.remove(&k).is_some());
            }
            Op::Contains(k) => {
                assert_eq!(map.contains(&k), oracle.contains_key(&k));
                assert_eq!(map.get(&k), oracle.get(&k).copied());
            }
            Op::Rank(k) => {
                assert_eq!(map.rank(&k), oracle_rank(&oracle, k));
            }
            Op::Select(i) => {
                let expect = oracle.iter().nth(i as usize).map(|(k, v)| (*k, *v));
                assert_eq!(map.select(i), expect);
            }
            Op::RangeCount(a, b) => {
                let (lo, hi) = (a.min(b), a.max(b));
                let expect = oracle.range(lo..=hi).count() as u64;
                assert_eq!(map.range_count(&lo, &hi), expect);
            }
            Op::RangeSum(a, b) => {
                let (lo, hi) = (a.min(b), a.max(b));
                let expect: u64 = oracle.range(lo..=hi).map(|(_, v)| *v).sum();
                assert_eq!(map.range_aggregate(&lo, &hi), expect);
            }
            Op::Len => {
                assert_eq!(map.len(), oracle.len() as u64);
            }
        }
    }
    // Final full-state comparison.
    let snap = map.snapshot();
    let got: Vec<(u64, u64)> = snap.iter().collect();
    let want: Vec<(u64, u64)> = oracle.into_iter().collect();
    assert_eq!(got, want);
}

#[test]
fn bat_matches_btreemap() {
    for case in 0..48u64 {
        let map = BatMap::<u64, u64, SumAug>::new();
        check(&map, &random_ops(0xBA7_0001 ^ case, 300));
        map.node_tree()
            .validate(true)
            .expect("chromatic invariants");
    }
}

#[test]
fn bat_del_matches_btreemap() {
    for case in 0..32u64 {
        let map = BatMap::<u64, u64, SumAug>::with_policy(DelegationPolicy::Del {
            timeout: Some(std::time::Duration::from_millis(1)),
        });
        check(&map, &random_ops(0xBA7_0002 ^ case, 200));
    }
}

#[test]
fn frbst_matches_btreemap() {
    for case in 0..32u64 {
        let map = BatMap::<u64, u64, SumAug>::new_unbalanced();
        check(&map, &random_ops(0xBA7_0003 ^ case, 200));
    }
}

#[test]
fn bulk_build_equals_incremental() {
    for case in 0..24u64 {
        let mut rng = Xorshift::new(0xBA7_0004 ^ case);
        let n = rng.below(400);
        let keys: BTreeSet<u64> = (0..n).map(|_| rng.below(1 << 16)).collect();
        let pairs: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k * 3)).collect();
        let bulk = BatMap::<u64, u64>::bulk_build(pairs.clone());
        let inc = BatMap::<u64, u64>::new();
        for (k, v) in &pairs {
            inc.insert(*k, *v);
        }
        assert_eq!(bulk.len(), inc.len());
        assert_eq!(bulk.snapshot().keys(), inc.snapshot().keys());
        for (k, _) in pairs.iter().take(32) {
            assert_eq!(bulk.rank(k), inc.rank(k));
            assert_eq!(bulk.get(k), inc.get(k));
        }
        bulk.node_tree()
            .validate(true)
            .expect("bulk chromatic invariants");
    }
}

#[test]
fn vcas_matches_btreeset() {
    for case in 0..32u64 {
        let set = cbat::vcas::VcasSet::new();
        let mut oracle: BTreeSet<u64> = BTreeSet::new();
        for op in &random_ops(0xBA7_0005 ^ case, 200) {
            match *op {
                Op::Insert(k, _) => {
                    assert_eq!(set.insert(k), oracle.insert(k));
                }
                Op::Remove(k) => {
                    assert_eq!(set.remove(k), oracle.remove(&k));
                }
                Op::Contains(k) => {
                    assert_eq!(set.contains(k), oracle.contains(&k));
                }
                Op::RangeCount(a, b) => {
                    let (lo, hi) = (a.min(b), a.max(b));
                    let snap = set.snapshot();
                    assert_eq!(
                        snap.range_count(lo, hi),
                        oracle.range(lo..=hi).count() as u64
                    );
                }
                Op::Rank(k) => {
                    assert_eq!(set.snapshot().rank(k), oracle.range(..=k).count() as u64);
                }
                _ => {}
            }
        }
        let want: Vec<u64> = oracle.iter().copied().collect();
        assert_eq!(set.snapshot().range_collect(0, u64::MAX - 2), want);
    }
}

#[test]
fn fanout_matches_btreeset() {
    for case in 0..32u64 {
        let set = cbat::fanout::FanoutSet::new();
        let mut oracle: BTreeSet<u64> = BTreeSet::new();
        for op in &random_ops(0xBA7_0006 ^ case, 250) {
            match *op {
                Op::Insert(k, _) => {
                    assert_eq!(set.insert(k), oracle.insert(k));
                }
                Op::Remove(k) => {
                    assert_eq!(set.remove(k), oracle.remove(&k));
                }
                Op::Contains(k) => {
                    assert_eq!(set.contains(k), oracle.contains(&k));
                }
                Op::RangeCount(a, b) => {
                    let (lo, hi) = (a.min(b), a.max(b));
                    assert_eq!(
                        set.snapshot().range_count(lo, hi),
                        oracle.range(lo..=hi).count() as u64
                    );
                }
                _ => {}
            }
        }
        let want: Vec<u64> = oracle.iter().copied().collect();
        assert_eq!(set.snapshot().range_collect(0, u64::MAX), want);
    }
}

#[test]
fn chromatic_invariants_hold_for_any_sequence() {
    for case in 0..32u64 {
        let mut rng = Xorshift::new(0xBA7_0007 ^ case);
        let len = 1 + rng.below(400);
        let set = cbat::chromatic::ChromaticSet::<u64>::new();
        let mut oracle = BTreeSet::new();
        for _ in 0..len {
            let k = rng.below(256);
            if rng.below(2) == 0 {
                assert_eq!(set.insert(k), oracle.insert(k));
            } else {
                assert_eq!(set.remove(&k), oracle.remove(&k));
            }
        }
        let shape = set.tree().validate(true).expect("invariants");
        assert_eq!(shape.keys, oracle.len());
        let want: Vec<u64> = oracle.iter().copied().collect();
        assert_eq!(set.collect_keys(), want);
    }
}

#[test]
fn rank_select_duality() {
    for case in 0..24u64 {
        let mut rng = Xorshift::new(0xBA7_0008 ^ case);
        let keys: BTreeSet<u64> = (0..1 + rng.below(200))
            .map(|_| rng.below(1 << 16))
            .collect();
        let set = BatSet::<u64>::new();
        for &k in &keys {
            set.insert(k);
        }
        let n = set.len();
        assert_eq!(n, keys.len() as u64);
        let snap = set.snapshot();
        for i in 0..n {
            let k = snap.select(i).map(|(k, _)| k).unwrap();
            assert_eq!(snap.rank(&k), i + 1);
            assert_eq!(snap.rank_exclusive(&k), i);
        }
    }
}

#[test]
fn snapshot_frozen_under_any_later_ops() {
    for case in 0..24u64 {
        let mut rng = Xorshift::new(0xBA7_0009 ^ case);
        let initial: BTreeSet<u64> = (0..1 + rng.below(100))
            .map(|_| rng.below(1 << 16))
            .collect();
        let set = BatSet::<u64>::new();
        for &k in &initial {
            set.insert(k);
        }
        let snap = set.snapshot();
        for _ in 0..1 + rng.below(100) {
            let k = rng.below(1 << 16);
            if rng.below(2) == 0 {
                set.insert(k);
            } else {
                set.remove(&k);
            }
        }
        let want: Vec<u64> = initial.iter().copied().collect();
        assert_eq!(snap.keys(), want);
    }
}
