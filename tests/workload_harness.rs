//! Integration tests for the benchmark harness itself, driven against the
//! real trees: the measurements the figures depend on must be sane.

use std::time::Duration;

use cbat::workloads::{self, KeyDist, OpMix, QueryKind, RunConfig};

struct Bat(cbat::BatSet<u64>);

impl workloads::BenchSet for Bat {
    fn insert(&self, k: u64) -> bool {
        self.0.insert(k)
    }
    fn remove(&self, k: u64) -> bool {
        self.0.remove(&k)
    }
    fn contains(&self, k: u64) -> bool {
        self.0.contains(&k)
    }
    fn range_count(&self, lo: u64, hi: u64) -> u64 {
        self.0.range_count(&lo, &hi)
    }
    fn rank(&self, k: u64) -> u64 {
        self.0.rank(&k)
    }
    fn select(&self, i: u64) -> Option<u64> {
        self.0.select(i)
    }
    fn size_hint(&self) -> u64 {
        self.0.len()
    }
    fn name(&self) -> &'static str {
        "BAT"
    }
}

#[test]
fn prefill_hits_half_on_real_tree() {
    let s = Bat(cbat::BatSet::new());
    workloads::prefill(&s, 20_000, 7);
    let n = s.0.len();
    assert!(
        (8_500..11_500).contains(&n),
        "prefill reached {n}, expected ≈10_000"
    );
    // Prefill must leave a balanced tree (bit-reversed order).
    let shape = s.0.as_map().node_tree().validate(true).expect("valid");
    assert!(shape.height <= 2 * 15 + 2, "height {}", shape.height);
    ebr::flush();
}

#[test]
fn mixed_run_produces_expected_op_shares() {
    let s = Bat(cbat::BatSet::new());
    let mut cfg = RunConfig::new(2, 5_000);
    cfg.duration = Duration::from_millis(150);
    cfg.mix = OpMix::percent(10, 10, 40, 40);
    cfg.query = QueryKind::RangeCount { size: 100 };
    let r = workloads::run(&s, &cfg);
    assert!(r.total_ops > 1_000, "too slow: {}", r.total_ops);
    let frac = |i: usize| r.ops[i] as f64 / r.total_ops as f64;
    assert!((0.06..0.14).contains(&frac(0)), "insert share {}", frac(0));
    assert!((0.06..0.14).contains(&frac(1)), "delete share {}", frac(1));
    assert!((0.34..0.46).contains(&frac(2)), "find share {}", frac(2));
    assert!((0.34..0.46).contains(&frac(3)), "query share {}", frac(3));
    ebr::flush();
}

#[test]
fn latency_sampling_reports_positive_values() {
    let s = Bat(cbat::BatSet::new());
    let mut cfg = RunConfig::new(1, 5_000);
    cfg.duration = Duration::from_millis(150);
    cfg.mix = OpMix::percent(25, 25, 0, 50);
    cfg.query = QueryKind::RangeCount { size: 500 };
    let r = workloads::run(&s, &cfg);
    assert!(r.update_latency_ns > 0.0);
    assert!(r.query_latency_ns > 0.0);
    // A 500-key range query must cost more than a point update at this
    // size? Not necessarily — but both must be well under a millisecond
    // on a prefilled 5K tree.
    assert!(r.update_latency_ns < 1e6);
    assert!(r.query_latency_ns < 1e6);
    ebr::flush();
}

#[test]
fn zipf_distribution_contends_on_hot_keys() {
    let s = Bat(cbat::BatSet::new());
    // 10K keys, not 100K: the reuse ratio asserted below must hold even on
    // a slow single-core host that only completes a few thousand ops in the
    // window. Over 100K keys that few zipf(0.99) draws leaves the reuse
    // ratio right at the 2x threshold (observed len/inserts = 0.503); over
    // 10K keys the head mass is large enough that the same op count lands
    // near 0.33 with wide margin.
    let mut cfg = RunConfig::new(2, 10_000);
    cfg.duration = Duration::from_millis(100);
    cfg.mix = OpMix::percent(50, 50, 0, 0);
    cfg.dist = KeyDist::Zipf(0.99);
    cfg.prefill = false;
    let r = workloads::run(&s, &cfg);
    // Massive key reuse: final set far smaller than successful inserts.
    assert!(s.0.len() < r.ops[0] / 2, "zipf not skewed enough");
    ebr::flush();
}

#[test]
fn sorted_distribution_drives_spine_growth() {
    // On the unbalanced tree, the sorted stream is adversarial: per-op
    // cost grows, so ops/sec collapses relative to BAT under the same
    // stream — the fig5b mechanism, asserted as a ratio.
    struct Fr(cbat::FrSet<u64>);
    impl workloads::BenchSet for Fr {
        fn insert(&self, k: u64) -> bool {
            self.0.insert(k)
        }
        fn remove(&self, k: u64) -> bool {
            self.0.remove(&k)
        }
        fn contains(&self, k: u64) -> bool {
            self.0.contains(&k)
        }
        fn range_count(&self, lo: u64, hi: u64) -> u64 {
            self.0.range_count(&lo, &hi)
        }
        fn rank(&self, k: u64) -> u64 {
            self.0.rank(&k)
        }
        fn select(&self, i: u64) -> Option<u64> {
            self.0.select(i)
        }
        fn size_hint(&self) -> u64 {
            self.0.len()
        }
        fn name(&self) -> &'static str {
            "FR-BST"
        }
    }
    let mut cfg = RunConfig::new(1, 1_000_000);
    cfg.duration = Duration::from_millis(250);
    cfg.mix = OpMix::percent(100, 0, 0, 0);
    cfg.dist = KeyDist::Sorted;
    cfg.prefill = false;

    let bat = Bat(cbat::BatSet::new());
    let r_bat = workloads::run(&bat, &cfg);
    let fr = Fr(cbat::FrSet::new());
    let r_fr = workloads::run(&fr, &cfg);
    assert!(
        r_bat.total_ops as f64 > 3.0 * r_fr.total_ops as f64,
        "balancing should win sorted streams: BAT {} vs FR {}",
        r_bat.total_ops,
        r_fr.total_ops
    );
    ebr::flush();
}
