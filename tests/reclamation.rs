//! Memory-reclamation integration tests (paper §6): versions, nodes and
//! PropStatus objects must all be retired and eventually freed — no
//! unbounded growth under sustained churn, and no reclamation while
//! snapshots can still reach the memory.

use cbat::{BatMap, BatSet, DelegationPolicy};

/// Sustained update churn must not leak: the gap between retired and
/// freed objects stays bounded (by the epoch lag and per-thread bags),
/// rather than growing with the operation count.
#[test]
fn churn_does_not_leak() {
    let map = BatMap::<u64, u64>::new();
    // Warm up and measure the baseline gap.
    for k in 0..500u64 {
        map.insert(k, k);
    }
    ebr::flush();
    ebr::flush();
    let s0 = ebr::stats();

    // Heavy churn: every op retires nodes and versions.
    const ROUNDS: u64 = 8;
    const OPS: u64 = 4_000;
    let mut gaps = Vec::new();
    for r in 0..ROUNDS {
        for i in 0..OPS {
            let k = (r * OPS + i) % 1_000;
            if i % 2 == 0 {
                map.insert(k, k);
            } else {
                map.remove(&k);
            }
        }
        ebr::flush();
        ebr::flush();
        let s = ebr::stats();
        gaps.push(s.retired - s.freed);
    }
    let s1 = ebr::stats();
    assert!(
        s1.retired > s0.retired + (ROUNDS * OPS) as usize / 4,
        "churn must retire many objects (retired {} -> {})",
        s0.retired,
        s1.retired
    );
    // The outstanding gap must be bounded, not proportional to total ops.
    let max_gap = *gaps.iter().max().unwrap();
    assert!(
        max_gap < 20_000,
        "unreclaimed gap {max_gap} grows with op count: {gaps:?}"
    );
}

/// A live snapshot pins its version tree: reclamation of versions it can
/// reach is deferred until the snapshot is dropped — meanwhile the
/// snapshot must stay readable and exactly consistent.
#[test]
fn snapshot_blocks_reclamation_of_its_versions() {
    let set = BatSet::<u64>::new();
    for k in 0..2_000u64 {
        set.insert(k);
    }
    let snap = set.snapshot();
    // Replace essentially every version in the tree many times over.
    for round in 0..5u64 {
        for k in 0..2_000u64 {
            set.remove(&k);
            set.insert(k + (round + 1) * 10_000);
            set.remove(&(k + (round + 1) * 10_000));
            set.insert(k);
        }
        ebr::collect();
    }
    // The old snapshot still reads perfectly.
    assert_eq!(snap.len(), 2_000);
    for probe in (0..2_000u64).step_by(97) {
        assert!(snap.contains(&probe), "snapshot lost key {probe}");
    }
    assert_eq!(snap.rank(&1_999), 2_000);
    drop(snap);
    ebr::flush();
    ebr::flush();
    let s = ebr::stats();
    assert!(s.freed > 0);
}

/// PropStatus objects (delegation variants) are retired at propagate end;
/// delegation-heavy runs must not leak them either.
#[test]
fn delegation_objects_reclaimed() {
    use std::sync::Arc;
    let s0 = ebr::stats();
    let set = Arc::new(BatSet::<u64>::with_policy(DelegationPolicy::EagerDel {
        timeout: Some(std::time::Duration::from_micros(100)),
    }));
    let handles: Vec<_> = (0..6u64)
        .map(|t| {
            let set = set.clone();
            std::thread::spawn(move || {
                for i in 0..4_000u64 {
                    let k = (t + i * 7) % 32; // tiny space: heavy conflicts
                    if i % 2 == 0 {
                        set.insert(k);
                    } else {
                        set.remove(&k);
                    }
                }
                ebr::flush();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    ebr::flush();
    ebr::flush();
    let s1 = ebr::stats();
    let outstanding = (s1.retired - s1.freed) as i64 - (s0.retired - s0.freed) as i64;
    assert!(
        outstanding < 20_000,
        "delegation run leaked {outstanding} objects"
    );
    // Every propagate allocated a PropStatus: 6 threads x 4000 ops, all
    // must have been retired through the normal path (no crash = pass,
    // plus the bound above).
    assert_eq!(set.as_map().stats.snapshot().propagates, 6 * 4_000);
}

/// Dropping a whole tree frees it without touching EBR correctness.
#[test]
fn tree_drop_is_clean() {
    for _ in 0..50 {
        let map = BatMap::<u64, u64>::new();
        for k in 0..200u64 {
            map.insert(k, k);
        }
        for k in (0..200u64).step_by(2) {
            map.remove(&k);
        }
        drop(map);
        ebr::collect();
    }
    ebr::flush();
}
