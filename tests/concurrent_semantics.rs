//! Cross-crate integration tests: concurrent semantics of the augmented
//! trees under multi-threaded workloads, checked against per-thread
//! bookkeeping and snapshot self-consistency invariants.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cbat::workloads::Xorshift;
use cbat::{BatMap, BatSet, DelegationPolicy, SumAug};

fn all_policies() -> Vec<DelegationPolicy> {
    vec![
        DelegationPolicy::None,
        DelegationPolicy::Del {
            timeout: Some(std::time::Duration::from_millis(2)),
        },
        DelegationPolicy::EagerDel {
            timeout: Some(std::time::Duration::from_millis(2)),
        },
    ]
}

/// Disjoint key ranges per thread: final state must equal the union of
/// per-thread expectations, for every variant, balanced and unbalanced.
#[test]
fn final_state_matches_per_thread_oracles() {
    for balanced in [true, false] {
        for policy in all_policies() {
            let map = Arc::new(if balanced {
                BatMap::<u64, u64>::with_policy(policy)
            } else {
                BatMap::<u64, u64>::new_unbalanced_with_policy(policy)
            });
            const THREADS: u64 = 6;
            const RANGE: u64 = 700;
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let map = map.clone();
                    std::thread::spawn(move || {
                        let base = t * RANGE;
                        let mut rng = Xorshift::new(t + 1);
                        let mut mine = BTreeSet::new();
                        for _ in 0..3_000 {
                            let k = base + rng.below(RANGE);
                            if rng.next_u64() & 1 == 0 {
                                assert_eq!(map.insert(k, k * 2), mine.insert(k));
                            } else {
                                assert_eq!(map.remove(&k), mine.remove(&k));
                            }
                        }
                        mine
                    })
                })
                .collect();
            let mut expect = BTreeSet::new();
            for h in handles {
                expect.extend(h.join().unwrap());
            }
            let snap = map.snapshot();
            let got: Vec<u64> = snap.keys();
            let want: Vec<u64> = expect.iter().copied().collect();
            assert_eq!(got, want, "balanced={balanced}");
            assert_eq!(snap.len(), want.len() as u64);
            // Values survived too.
            for &k in expect.iter().take(50) {
                assert_eq!(map.get(&k), Some(k * 2));
            }
            ebr::flush();
        }
    }
}

/// Snapshot monotonicity under insert-only load, plus internal consistency
/// of every snapshot taken mid-flight.
#[test]
fn snapshots_consistent_under_churn() {
    let set = Arc::new(BatSet::<u64>::new());
    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for t in 0..4u64 {
        let set = set.clone();
        let stop = stop.clone();
        writers.push(std::thread::spawn(move || {
            let mut k = t;
            while !stop.load(Ordering::Relaxed) {
                set.insert(k);
                k += 4;
            }
            k / 4
        }));
    }
    let mut last = 0u64;
    for _ in 0..200 {
        let snap = set.snapshot();
        let n = snap.len();
        assert!(n >= last, "insert-only sizes must be monotone");
        last = n;
        if n > 1 {
            // rank/select round-trip on the frozen snapshot.
            let mid = n / 2;
            let (k, _) = snap.select(mid).unwrap();
            assert_eq!(snap.rank(&k), mid + 1);
            assert!(snap.contains(&k));
            // Range count over everything equals len.
            let (max_k, _) = snap.select(n - 1).unwrap();
            assert_eq!(snap.range_count(&0, &max_k), n);
        }
    }
    stop.store(true, Ordering::SeqCst);
    for w in writers {
        w.join().unwrap();
    }
    ebr::flush();
}

/// A mixed read/write stress where range counts are cross-checked between
/// the augmented fast path and a brute-force traversal of the same
/// snapshot: both must agree exactly (they see the same frozen tree).
#[test]
fn range_count_agrees_with_snapshot_scan() {
    let set = Arc::new(BatSet::<u64>::new());
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let set = set.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut rng = Xorshift::new(5);
            while !stop.load(Ordering::Relaxed) {
                let k = rng.below(5_000);
                if rng.next_u64() & 1 == 0 {
                    set.insert(k);
                } else {
                    set.remove(&k);
                }
            }
        })
    };
    let mut rng = Xorshift::new(6);
    for _ in 0..300 {
        let lo = rng.below(4_000);
        let hi = lo + rng.below(1_000);
        let snap = set.snapshot();
        let fast = snap.range_count(&lo, &hi);
        let slow = snap
            .keys()
            .into_iter()
            .filter(|k| *k >= lo && *k <= hi)
            .count() as u64;
        assert_eq!(fast, slow, "[{lo},{hi}]");
    }
    stop.store(true, Ordering::SeqCst);
    writer.join().unwrap();
    ebr::flush();
}

/// Aggregation invariant under concurrency: with SumAug and value == key,
/// a quiescent aggregate equals the sum of the final key set.
#[test]
fn sum_aggregate_converges() {
    let map = Arc::new(BatMap::<u64, u64, SumAug>::new());
    let handles: Vec<_> = (0..6u64)
        .map(|t| {
            let map = map.clone();
            std::thread::spawn(move || {
                let base = t * 10_000;
                for i in 0..1_000 {
                    map.insert(base + i, base + i);
                }
                for i in (0..1_000).step_by(3) {
                    map.remove(&(base + i));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = map.snapshot();
    let brute: u64 = snap.iter().map(|(_, v)| v).sum();
    assert_eq!(map.aggregate(), brute);
    assert_eq!(snap.len() as usize, snap.keys().len());
    ebr::flush();
}

/// FR-BST and BAT run the identical workload concurrently (per-thread
/// disjoint ranges) and must converge to identical sets.
#[test]
fn frbst_and_bat_converge_identically() {
    let bat = Arc::new(BatSet::<u64>::new());
    let fr = Arc::new(cbat::FrSet::<u64>::new());
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let bat = bat.clone();
            let fr = fr.clone();
            std::thread::spawn(move || {
                let mut rng = Xorshift::new(100 + t);
                let base = t * 500;
                for _ in 0..2_000 {
                    let k = base + rng.below(500);
                    if rng.next_u64() & 1 == 0 {
                        bat.insert(k);
                        fr.insert(k);
                    } else {
                        bat.remove(&k);
                        fr.remove(&k);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(bat.len(), fr.len());
    assert_eq!(bat.snapshot().keys(), fr.as_map().snapshot().keys());
    ebr::flush();
}

/// Delegation with a stalled delegatee: the timeout fallback must keep
/// other threads progressing (failure-injection for §5's blocking note).
#[test]
fn delegation_timeout_survives_stalls() {
    // A tiny key space maximizes refresh conflicts (everyone shares the
    // top of the tree), and short timeouts force the fallback path.
    let set = Arc::new(BatSet::<u64>::with_policy(DelegationPolicy::EagerDel {
        timeout: Some(std::time::Duration::from_micros(50)),
    }));
    let handles: Vec<_> = (0..8u64)
        .map(|t| {
            let set = set.clone();
            std::thread::spawn(move || {
                let mut rng = Xorshift::new(t);
                for _ in 0..2_000 {
                    let k = rng.below(16);
                    if rng.next_u64() & 1 == 0 {
                        set.insert(k);
                    } else {
                        set.remove(&k);
                    }
                    if rng.below(97) == 0 {
                        // Simulated stall while (possibly) being someone's
                        // delegatee.
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = set.snapshot();
    assert_eq!(snap.len(), snap.keys().len() as u64);
    ebr::flush();
}

/// The node tree stays a valid chromatic tree after heavy concurrency.
#[test]
fn node_tree_invariants_after_stress() {
    let map = Arc::new(BatMap::<u64, ()>::new());
    let handles: Vec<_> = (0..8u64)
        .map(|t| {
            let map = map.clone();
            std::thread::spawn(move || {
                let mut rng = Xorshift::new(t * 3 + 1);
                for _ in 0..2_500 {
                    let k = rng.below(1_024);
                    if rng.next_u64() & 1 == 0 {
                        map.insert(k, ());
                    } else {
                        map.remove(&k);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let guard = ebr::pin();
    map.node_tree().cleanup_everywhere(&guard);
    drop(guard);
    let shape = map
        .node_tree()
        .validate(true)
        .expect("chromatic invariants");
    assert_eq!(shape.keys as u64, map.len());
    ebr::flush();
}
