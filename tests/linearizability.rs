//! Per-key linearizability checking.
//!
//! For a set object, `insert(k)`/`remove(k)`/`contains(k)` on *different*
//! keys commute, so the whole history is linearizable iff each per-key
//! sub-history is linearizable against sequential boolean-set semantics.
//! We record timestamped invocation/response intervals for a contended
//! workload and run an interval-order linearizability check per key.
//!
//! (Rank/select queries span keys and are exercised by the snapshot
//! consistency tests instead; here we nail the point operations.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cbat::{BatSet, DelegationPolicy};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Insert,
    Remove,
    Contains,
}

#[derive(Debug, Clone, Copy)]
struct Event {
    kind: OpKind,
    result: bool,
    invoke: u64,
    ret: u64,
}

/// Check linearizability of one key's history against a boolean set:
/// exhaustive search over linear extensions of the interval order. The
/// interval-order pruning (only ops invoked before the earliest pending
/// return may linearize first) keeps this fast for our history sizes.
fn check_key_history(events: &mut [Event]) -> bool {
    events.sort_by_key(|e| e.invoke);
    let n = events.len();
    if n == 0 {
        return true;
    }
    let mut used = vec![false; n];
    search(events, &mut used, n, false)
}

fn apply(kind: OpKind, result: bool, state: bool) -> Option<bool> {
    match kind {
        OpKind::Insert => {
            if result != state {
                Some(true)
            } else {
                None
            }
        }
        OpKind::Remove => {
            if result == state {
                Some(false)
            } else {
                None
            }
        }
        OpKind::Contains => {
            if result == state {
                Some(state)
            } else {
                None
            }
        }
    }
}

fn search(events: &[Event], used: &mut [bool], remaining: usize, state: bool) -> bool {
    if remaining == 0 {
        return true;
    }
    // Earliest return among unused ops: any op invoked after it cannot be
    // linearized first (interval-order pruning).
    let min_ret = events
        .iter()
        .zip(used.iter())
        .filter(|(_, u)| !**u)
        .map(|(e, _)| e.ret)
        .min()
        .unwrap();
    for i in 0..events.len() {
        if used[i] || events[i].invoke > min_ret {
            continue;
        }
        if let Some(next) = apply(events[i].kind, events[i].result, state) {
            used[i] = true;
            if search(events, used, remaining - 1, next) {
                used[i] = false;
                return true;
            }
            used[i] = false;
        }
    }
    false
}

fn record_history(policy: DelegationPolicy, keys: u64, per_thread: usize) -> Vec<Vec<Event>> {
    let set = Arc::new(BatSet::<u64>::with_policy(policy));
    let clock = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..6u64)
        .map(|t| {
            let set = set.clone();
            let clock = clock.clone();
            std::thread::spawn(move || {
                let mut out: Vec<(u64, Event)> = Vec::new();
                let mut x = t * 7 + 1;
                for _ in 0..per_thread {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % keys;
                    let kind = match x % 3 {
                        0 => OpKind::Insert,
                        1 => OpKind::Remove,
                        _ => OpKind::Contains,
                    };
                    let invoke = clock.fetch_add(1, Ordering::SeqCst);
                    let result = match kind {
                        OpKind::Insert => set.insert(k),
                        OpKind::Remove => set.remove(&k),
                        OpKind::Contains => set.contains(&k),
                    };
                    let ret = clock.fetch_add(1, Ordering::SeqCst);
                    out.push((
                        k,
                        Event {
                            kind,
                            result,
                            invoke,
                            ret,
                        },
                    ));
                }
                out
            })
        })
        .collect();
    let mut per_key: Vec<Vec<Event>> = (0..keys).map(|_| Vec::new()).collect();
    for h in handles {
        for (k, e) in h.join().unwrap() {
            per_key[k as usize].push(e);
        }
    }
    per_key
}

#[test]
fn point_ops_linearizable_bat() {
    let histories = record_history(DelegationPolicy::None, 8, 40);
    for (k, mut h) in histories.into_iter().enumerate() {
        assert!(
            check_key_history(&mut h),
            "key {k}: history not linearizable: {h:?}"
        );
    }
    ebr::flush();
}

#[test]
fn point_ops_linearizable_eager_del() {
    let histories = record_history(
        DelegationPolicy::EagerDel {
            timeout: Some(std::time::Duration::from_millis(1)),
        },
        8,
        40,
    );
    for (k, mut h) in histories.into_iter().enumerate() {
        assert!(
            check_key_history(&mut h),
            "key {k}: history not linearizable: {h:?}"
        );
    }
    ebr::flush();
}

#[test]
fn checker_rejects_broken_histories() {
    // Sanity: a history that claims two successful inserts of the same
    // key with no intervening successful remove must be rejected.
    let mut bad = vec![
        Event {
            kind: OpKind::Insert,
            result: true,
            invoke: 0,
            ret: 1,
        },
        Event {
            kind: OpKind::Insert,
            result: true,
            invoke: 2,
            ret: 3,
        },
    ];
    assert!(!check_key_history(&mut bad));

    // And a contains(false) strictly after a successful insert.
    let mut bad2 = vec![
        Event {
            kind: OpKind::Insert,
            result: true,
            invoke: 0,
            ret: 1,
        },
        Event {
            kind: OpKind::Contains,
            result: false,
            invoke: 2,
            ret: 3,
        },
    ];
    assert!(!check_key_history(&mut bad2));

    // A concurrent pair where either order works must be accepted.
    let mut ok = vec![
        Event {
            kind: OpKind::Insert,
            result: true,
            invoke: 0,
            ret: 5,
        },
        Event {
            kind: OpKind::Contains,
            result: false,
            invoke: 1,
            ret: 2,
        },
    ];
    assert!(check_key_history(&mut ok));
}
