//! Per-key linearizability of point operations, across structures.
//!
//! The checker and history recorder live in `workloads::linearize` (they
//! were extracted from this file so any `BenchSet` adapter can run under
//! them); this suite drives the real structures through the bench
//! adapters: BAT under two delegation policies, the fanout tree at both
//! publication granularities (per-edge — the PR 4 tentpole — and the
//! retained per-holder ablation), and the unaugmented chromatic tree.
//!
//! Histories are recorded on a hot 8-key space by 6 threads, so nearly
//! every operation contends; each per-key sub-history is then checked
//! against sequential boolean-set semantics.

use bench::{
    BatAdapter, ChromaticAdapter, FanoutAdapter, PerHolderFanoutAdapter, ShardedBatAdapter,
    ShardedFanoutAdapter,
};
use shard::Partition;
use workloads::linearize::assert_point_ops_linearizable;
use workloads::BenchSet;

fn check(set: &dyn BenchSet, what: &str) {
    assert_point_ops_linearizable(set, 6, 8, 40, 0x0BA7_05E7, what);
    ebr::flush();
}

#[test]
fn point_ops_linearizable_bat() {
    check(&BatAdapter::plain(), "BAT (no delegation)");
}

#[test]
fn point_ops_linearizable_eager_del() {
    check(&BatAdapter::eager(), "BAT-EagerDel");
}

#[test]
fn point_ops_linearizable_fanout_per_edge() {
    check(&FanoutAdapter::new(), "fanout (per-edge publication)");
}

#[test]
fn point_ops_linearizable_fanout_per_holder() {
    check(
        &PerHolderFanoutAdapter::new(),
        "fanout (per-holder ablation)",
    );
}

#[test]
fn point_ops_linearizable_chromatic() {
    check(&ChromaticAdapter::new(), "chromatic (unaugmented)");
}

#[test]
fn point_ops_linearizable_sharded_bat() {
    // An 8-key hot space over 4 hash shards: several keys share a shard,
    // so the history exercises both in-shard contention and cross-shard
    // routing.
    check(
        &ShardedBatAdapter::new(4, Partition::Hash),
        "sharded BAT forest (hash)",
    );
}

#[test]
fn point_ops_linearizable_sharded_fanout() {
    check(
        &ShardedFanoutAdapter::new(4, Partition::Range { max_key: 8 }),
        "sharded fanout forest (range)",
    );
}
